// Binary wire codec.
//
// Every fixed-shape message in this package is encoded by hand into a
// length-prefixed, versioned binary frame — no reflection, no per-message
// encoder state, no intermediate buffers. Only opaque application payloads
// (types.Value instances outside the small set of common concrete types)
// fall back to gob, because their shape is by definition unknown here.
//
// Frame layout (all integers big-endian):
//
//	offset 0  u32  body length (bytes after this prefix)
//	offset 4  u8   frame format version (frameVersion)
//	offset 5  u8   payload type tag (t* constants)
//	offset 6  i64  Envelope.Job
//	offset 14 i32  Envelope.From
//	offset 18 i32  Envelope.To
//	offset 22 u64  Envelope.Seq
//	offset 30 ...  payload body (shape fixed by the type tag)
//
// The version byte exists for forward compatibility: a future frame layout
// bumps it, and decoders reject versions they do not know instead of
// misparsing. Several frames may be concatenated back to back — the UDP
// transport batches envelopes to one destination into one datagram this
// way — and each is self-delimiting via its length prefix.
//
// Decoding is hardened against truncated and corrupt input: every read is
// bounds-checked, slice counts are validated against the bytes actually
// remaining, value nesting is depth-limited, and Decode returns an error —
// never panics — on garbage.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"phish/internal/types"
)

// frameVersion is the wire format version stamped into every frame.
const frameVersion = 1

// frameHeaderLen is the encoded size of the length prefix plus envelope
// header (version, type tag, job, from, to, seq).
const frameHeaderLen = 4 + 1 + 1 + 8 + 4 + 4 + 8

// maxFrame bounds a single encoded message; large application payloads
// should be split by the application (the paper buffers and batches I/O).
const maxFrame = 16 << 20

// maxValueDepth bounds []Value nesting so a corrupt frame cannot drive the
// recursive value decoder into stack exhaustion (which would panic).
const maxValueDepth = 64

// Payload type tags. The zero tag is invalid so an all-zero frame never
// parses; tags are part of the wire format and must not be renumbered.
const (
	tInvalid byte = iota
	tStealRequest
	tStealReply
	tStealConfirm
	tArg
	tMigrate
	tMigrateAck
	tRegister
	tRegisterReply
	tUnregister
	tUpdate
	tHeartbeat
	tWorkerDown
	tIO
	tShutdown
	tSpawnRoot
	tStayRequest
	tStayReply
	tPause
	tPauseAck
	tSnapshotRequest
	tSnapshotReply
	tResume
	tJobRequest
	tJobReply
	tJobSubmit
	tJobSubmitReply
	tJobDone
	tJobList
	tJobListReply
	tAck
	tNilPayload
	tPeerGone
	tStatReport
	tDrainRequest
	tDrainAck
	tSuspectSet
	tDrainOrder
	// tGobEnvelope carries a gob-encoded payload of a type this codec has
	// no hand-rolled shape for (applications extending the protocol).
	tGobEnvelope byte = 255
)

// Value kind tags inside payloads. A types.Value is one tag byte followed
// by a kind-specific body; vGob wraps any other concrete type in gob.
const (
	vNil byte = iota
	vInt64
	vInt
	vInt32
	vUint64
	vFloat64
	vString
	vBool
	vBytes
	vInt64s
	vFloat64s
	vValues
	vGob byte = 255
)

var (
	errShortFrame   = errors.New("wire: truncated or corrupt frame")
	errFrameVersion = errors.New("wire: unknown frame version")
)

// ---- Pooled frame buffers -------------------------------------------------

// Frame is a pooled encode buffer holding one encoded envelope. Callers
// that finish with a frame (the datagram was written, the ack arrived)
// return it with Free so the steal/synch hot path produces no garbage.
type Frame struct{ buf []byte }

// Bytes returns the encoded frame. The slice is only valid until Free.
func (f *Frame) Bytes() []byte { return f.buf }

// Len returns the encoded size.
func (f *Frame) Len() int { return len(f.buf) }

// Free returns the frame's buffer to the pool. The frame must not be used
// afterwards.
func (f *Frame) Free() {
	if f == nil {
		return
	}
	f.buf = f.buf[:0]
	framePool.Put(f)
}

var framePool = sync.Pool{New: func() any { return &Frame{buf: make([]byte, 0, 512)} }}

// envelopePool recycles decoded envelopes. Decode draws from it; a caller
// that provably finishes with an envelope (the transport consuming an Ack,
// dropping a dedup-suppressed duplicate, a benchmark loop) hands it back
// with Free. Callers that pass envelopes on to consumers simply never
// free them — the pool is an optimization, not an obligation.
var envelopePool = sync.Pool{New: func() any { return new(Envelope) }}

// Free returns a decoded envelope to the pool. The envelope and its
// payload must not be referenced afterwards. Only call this when this
// code path is the envelope's final owner. A zero-copy view payload is
// freed with the envelope, dropping its arena reference.
func (e *Envelope) Free() {
	if e == nil {
		return
	}
	if v, ok := e.Payload.(*View); ok {
		v.Free()
	}
	*e = Envelope{}
	envelopePool.Put(e)
}

// fnIntern deduplicates closure function names. A job invokes the same
// handful of task functions billions of times, so the decode path would
// otherwise allocate a fresh copy of "fib" or "pfold" for every stolen
// closure. Memory stays bounded by two-generation rotation: when the
// current generation fills to half the cap, it becomes the previous
// generation (dropping the one before it) and a fresh map takes over.
// Names still in use are re-promoted on their next decode, so a stream of
// unique names — corrupt, adversarial, or just a very wide job — cycles
// the generations instead of saturating the table and forcing every
// later decode of a live name to allocate.
var fnIntern = struct {
	sync.RWMutex
	cur, old map[string]string
}{cur: make(map[string]string), old: make(map[string]string)}

const fnInternMax = 1024

func internName(b []byte) string {
	fnIntern.RLock()
	s, ok := fnIntern.cur[string(b)] // compiles to a zero-alloc map lookup
	if ok {
		fnIntern.RUnlock()
		return s
	}
	s, ok = fnIntern.old[string(b)]
	fnIntern.RUnlock()
	if !ok {
		s = string(b)
	}
	fnIntern.Lock()
	if len(fnIntern.cur) >= fnInternMax/2 {
		fnIntern.old = fnIntern.cur
		fnIntern.cur = make(map[string]string, 8)
	}
	fnIntern.cur[s] = s
	fnIntern.Unlock()
	return s
}

// EncodeFrame serializes env into a pooled frame. It is the zero-steady-
// state-allocation encode path: once the pool is warm, encoding a
// fixed-shape message allocates nothing.
func EncodeFrame(env *Envelope) (*Frame, error) {
	f := framePool.Get().(*Frame)
	b, err := AppendEncode(f.buf[:0], env)
	if err != nil {
		f.Free()
		return nil, err
	}
	f.buf = b
	return f, nil
}

// Encode serializes env as a length-prefixed binary frame into a fresh
// slice (compatibility path; hot paths use EncodeFrame or AppendEncode).
func Encode(env *Envelope) ([]byte, error) {
	return AppendEncode(nil, env)
}

// AppendEncode appends env's frame to dst and returns the extended slice.
// Frames are self-delimiting, so several may be appended back to back into
// one buffer (the UDP transport batches datagrams this way). Hot scheduler
// payloads are emitted in the v2 field-keyed layout (view.go); everything
// else keeps the v1 positional body.
func AppendEncode(dst []byte, env *Envelope) ([]byte, error) {
	return appendEncode(dst, env, true)
}

// AppendEncodeLegacy is AppendEncode pinned to v1 bodies for every tag —
// the old codec, kept reachable so the fabric's differential codec modes
// and cross-version tests can exercise a v2 decoder against v1 frames.
func AppendEncodeLegacy(dst []byte, env *Envelope) ([]byte, error) {
	return appendEncode(dst, env, false)
}

func appendEncode(dst []byte, env *Envelope, allowV2 bool) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	tag := payloadTag(env.Payload)
	ver := byte(frameVersion)
	if allowV2 && v2Tag(tag) {
		ver = frameVersionV2
	}
	dst = append(dst, ver, tag)
	dst = appendI64(dst, int64(env.Job))
	dst = appendI32(dst, int32(env.From))
	dst = appendI32(dst, int32(env.To))
	dst = appendU64(dst, env.Seq)
	var err error
	if ver == frameVersionV2 {
		dst, err = appendPayloadV2(dst, env.Payload)
	} else {
		dst, err = appendPayload(dst, env.Payload)
	}
	if err != nil {
		return nil, fmt.Errorf("wire: encode %T: %w", env.Payload, err)
	}
	body := len(dst) - start - 4
	if body > maxFrame {
		return nil, fmt.Errorf("wire: frame too large (%d bytes)", body)
	}
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(body))
	return dst, nil
}

// Decode parses one frame produced by Encode/AppendEncode. It never
// panics: corrupt or truncated frames return an error.
func Decode(frame []byte) (env *Envelope, err error) {
	// Belt and braces: the reader bounds-checks everything, but a decoding
	// bug must still surface as an error, not kill the process.
	defer func() {
		if r := recover(); r != nil {
			env, err = nil, fmt.Errorf("wire: decode panic: %v", r)
		}
	}()
	if len(frame) < frameHeaderLen {
		return nil, fmt.Errorf("wire: short frame (%d bytes)", len(frame))
	}
	n := binary.BigEndian.Uint32(frame[:4])
	if int64(n) != int64(len(frame)-4) {
		return nil, fmt.Errorf("wire: frame length mismatch: header %d, body %d", n, len(frame)-4)
	}
	if frame[4] != frameVersion && frame[4] != frameVersionV2 {
		return nil, fmt.Errorf("%w %d", errFrameVersion, frame[4])
	}
	tag := frame[5]
	e := envelopePool.Get().(*Envelope)
	e.Job = types.JobID(int64(binary.BigEndian.Uint64(frame[6:14])))
	e.From = types.WorkerID(int32(binary.BigEndian.Uint32(frame[14:18])))
	e.To = types.WorkerID(int32(binary.BigEndian.Uint32(frame[18:22])))
	e.Seq = binary.BigEndian.Uint64(frame[22:30])
	if frame[4] == frameVersionV2 {
		p, err := materializeV2(tag, frame[frameHeaderLen:])
		if err != nil {
			e.Free()
			return nil, fmt.Errorf("wire: decode %s: %w", tagName(tag), err)
		}
		e.Payload = p
		return e, nil
	}
	r := reader{b: frame[frameHeaderLen:]}
	e.Payload = readPayload(&r, tag)
	if r.err != nil {
		e.Free()
		return nil, fmt.Errorf("wire: decode %s: %w", tagName(tag), r.err)
	}
	if r.off != len(r.b) {
		e.Free()
		return nil, fmt.Errorf("wire: decode %s: %d trailing bytes", tagName(tag), len(r.b)-r.off)
	}
	return e, nil
}

// ---- Stream framing -------------------------------------------------------

// WriteFrame writes env to w as a length-prefixed frame (stream
// transports: the JobQ's TCP RPC). The encode buffer is pooled, so the
// call produces no per-message garbage.
func WriteFrame(w io.Writer, env *Envelope) error {
	f, err := EncodeFrame(env)
	if err != nil {
		return err
	}
	_, err = w.Write(f.Bytes())
	f.Free()
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame too large (%d bytes)", n)
	}
	buf := make([]byte, 4+n)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return nil, err
	}
	return Decode(buf)
}

// FrameReader reads successive frames from a byte stream, reusing one
// internal buffer across calls — the per-connection read path of the JobQ
// RPC without a fresh allocation per request.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, 0, 512)}
}

// Next reads and decodes one frame. The returned envelope owns its data
// (nothing aliases the internal buffer), so it survives the next call.
func (fr *FrameReader) Next() (*Envelope, error) {
	if cap(fr.buf) < 4 {
		fr.buf = make([]byte, 0, 512)
	}
	hdr := fr.buf[:4]
	if _, err := io.ReadFull(fr.r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame too large (%d bytes)", n)
	}
	total := int(4 + n)
	if cap(fr.buf) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		fr.buf = grown
	}
	frame := fr.buf[:total]
	if _, err := io.ReadFull(fr.r, frame[4:]); err != nil {
		return nil, err
	}
	return Decode(frame)
}

// ---- Reference gob codec --------------------------------------------------

// EncodeGob serializes env as a length-prefixed gob frame — the original
// reflection-based codec, kept as a correctness reference and benchmark
// baseline (BenchmarkStealRoundTrip/gob) for the binary codec above.
func EncodeGob(env *Envelope) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(env); err != nil {
		return nil, fmt.Errorf("wire: gob encode %T: %w", env.Payload, err)
	}
	if body.Len() > maxFrame {
		return nil, fmt.Errorf("wire: frame too large (%d bytes)", body.Len())
	}
	out := make([]byte, 4+body.Len())
	binary.BigEndian.PutUint32(out[:4], uint32(body.Len()))
	copy(out[4:], body.Bytes())
	return out, nil
}

// DecodeGob parses one frame produced by EncodeGob.
func DecodeGob(frame []byte) (*Envelope, error) {
	if len(frame) < 4 {
		return nil, fmt.Errorf("wire: short frame (%d bytes)", len(frame))
	}
	n := binary.BigEndian.Uint32(frame[:4])
	if int(n) != len(frame)-4 {
		return nil, fmt.Errorf("wire: frame length mismatch: header %d, body %d", n, len(frame)-4)
	}
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(frame[4:])).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: gob decode: %w", err)
	}
	return &env, nil
}

// ---- Append-style writers -------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendI32(b []byte, v int32) []byte   { return appendU32(b, uint32(v)) }
func appendI64(b []byte, v int64) []byte   { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// appendLen writes the presence flag and count of a slice or map, so nil
// and empty round-trip distinctly (tests compare with reflect.DeepEqual).
func appendLen(b []byte, n int, isNil bool) []byte {
	if isNil {
		return append(b, 0)
	}
	b = append(b, 1)
	return appendU32(b, uint32(n))
}

func appendTaskID(b []byte, t types.TaskID) []byte {
	b = appendI32(b, int32(t.Worker))
	return appendU64(b, t.Seq)
}

func appendCont(b []byte, c types.Continuation) []byte {
	b = appendTaskID(b, c.Task)
	return appendI32(b, c.Slot)
}

func appendValue(b []byte, v types.Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, vNil), nil
	case int64:
		return appendI64(append(b, vInt64), x), nil
	case int:
		return appendI64(append(b, vInt), int64(x)), nil
	case int32:
		return appendI32(append(b, vInt32), x), nil
	case uint64:
		return appendU64(append(b, vUint64), x), nil
	case float64:
		return appendF64(append(b, vFloat64), x), nil
	case string:
		return appendStr(append(b, vString), x), nil
	case bool:
		return appendBool(append(b, vBool), x), nil
	case []byte:
		b = appendLen(append(b, vBytes), len(x), x == nil)
		return append(b, x...), nil
	case []int64:
		b = appendLen(append(b, vInt64s), len(x), x == nil)
		for _, e := range x {
			b = appendI64(b, e)
		}
		return b, nil
	case []float64:
		b = appendLen(append(b, vFloat64s), len(x), x == nil)
		for _, e := range x {
			b = appendF64(b, e)
		}
		return b, nil
	case []types.Value:
		return appendValues(append(b, vValues), x)
	default:
		// Opaque application value: gob is the fallback boundary. The
		// concrete type must have been registered via RegisterValue.
		// Address a branch-local copy, not the parameter: &v would make v
		// escape and heap-allocate the interface header on every call,
		// including the scalar cases above that never reach gob.
		var buf bytes.Buffer
		opaque := v
		if err := gob.NewEncoder(&buf).Encode(&opaque); err != nil {
			return nil, err
		}
		b = append(b, vGob)
		b = appendU32(b, uint32(buf.Len()))
		return append(b, buf.Bytes()...), nil
	}
}

func appendValues(b []byte, vs []types.Value) ([]byte, error) {
	b = appendLen(b, len(vs), vs == nil)
	var err error
	for _, v := range vs {
		if b, err = appendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendClosure(b []byte, c Closure) ([]byte, error) {
	b = appendTaskID(b, c.ID)
	b = appendStr(b, c.Fn)
	b, err := appendValues(b, c.Args)
	if err != nil {
		return nil, err
	}
	b = appendI32(b, c.Missing)
	b = appendCont(b, c.Cont)
	b = appendBool(b, c.NoSteal)
	b = appendBlob(b, c.Ckpt)
	b = appendU64(b, c.CkptSeq)
	return appendTC(b, c.TC), nil
}

// appendTC writes a trace context: 13 fixed bytes, no allocation, so
// carrying it unconditionally costs the hot steal path nothing but space.
func appendTC(b []byte, tc TraceCtx) []byte {
	b = appendTaskID(b, tc.Parent)
	return append(b, tc.Flags)
}

// spanWireLen is the fixed encoded size of one Span: kind + flags +
// recording worker + three task ids + peer + start + end.
const spanWireLen = 1 + 1 + 4 + 3*12 + 4 + 8 + 8

func appendSpans(b []byte, ss []Span) []byte {
	b = appendLen(b, len(ss), ss == nil)
	for _, s := range ss {
		b = append(b, s.Kind, s.Flags)
		b = appendI32(b, int32(s.Worker))
		b = appendTaskID(b, s.Task)
		b = appendTaskID(b, s.Parent)
		b = appendTaskID(b, s.Link)
		b = appendI32(b, int32(s.Peer))
		b = appendI64(b, s.Start)
		b = appendI64(b, s.End)
	}
	return b
}

// appendBlob writes a presence-flagged byte slice (nil and empty are
// distinct, like appendLen elsewhere).
func appendBlob(b, data []byte) []byte {
	b = appendLen(b, len(data), data == nil)
	return append(b, data...)
}

func appendTaskCkpts(b []byte, cs []TaskCkpt) []byte {
	b = appendLen(b, len(cs), cs == nil)
	for _, c := range cs {
		b = appendTaskID(b, c.Task)
		b = appendU64(b, c.Seq)
		b = appendBlob(b, c.Data)
	}
	return b
}

func appendRecord(b []byte, r Record) ([]byte, error) {
	b = appendTaskID(b, r.ID)
	b = appendCont(b, r.RealCont)
	b, err := appendClosure(b, r.Task)
	if err != nil {
		return nil, err
	}
	b = appendI32(b, int32(r.Thief))
	b = appendBool(b, r.Confirmed)
	return appendI64(b, r.OutstandingNS), nil
}

func appendView(b []byte, v MembershipView) []byte {
	b = appendU64(b, v.Epoch)
	b = appendLen(b, len(v.Members), v.Members == nil)
	for _, m := range v.Members {
		b = appendI32(b, int32(m.Worker))
		b = appendStr(b, m.Addr)
		b = appendI32(b, int32(m.HostedBy))
		b = appendI32(b, m.Site)
	}
	return b
}

func appendJobSpec(b []byte, j JobSpec) ([]byte, error) {
	b = appendI64(b, int64(j.ID))
	b = appendStr(b, j.Name)
	b = appendStr(b, j.Program)
	b = appendStr(b, j.RootFn)
	b, err := appendValues(b, j.RootArgs)
	if err != nil {
		return nil, err
	}
	b = appendStr(b, j.CHAddr)
	return appendI32(b, j.Priority), nil
}

func appendI64s(b []byte, vs []int64) []byte {
	b = appendLen(b, len(vs), vs == nil)
	for _, v := range vs {
		b = appendI64(b, v)
	}
	return b
}

func appendCounts(b []byte, m map[types.WorkerID]int64) []byte {
	b = appendLen(b, len(m), m == nil)
	for k, v := range m {
		b = appendI32(b, int32(k))
		b = appendI64(b, v)
	}
	return b
}

// ---- Payload dispatch -----------------------------------------------------

// payloadTag maps a payload to its wire tag; unknown types get the gob
// fallback tag.
func payloadTag(p any) byte {
	switch x := p.(type) {
	case *View:
		return x.tag
	case StealRequest:
		return tStealRequest
	case StealReply:
		return tStealReply
	case StealConfirm:
		return tStealConfirm
	case Arg:
		return tArg
	case Migrate:
		return tMigrate
	case MigrateAck:
		return tMigrateAck
	case Register:
		return tRegister
	case RegisterReply:
		return tRegisterReply
	case Unregister:
		return tUnregister
	case Update:
		return tUpdate
	case Heartbeat:
		return tHeartbeat
	case WorkerDown:
		return tWorkerDown
	case IO:
		return tIO
	case Shutdown:
		return tShutdown
	case SpawnRoot:
		return tSpawnRoot
	case StayRequest:
		return tStayRequest
	case StayReply:
		return tStayReply
	case Pause:
		return tPause
	case PauseAck:
		return tPauseAck
	case SnapshotRequest:
		return tSnapshotRequest
	case SnapshotReply:
		return tSnapshotReply
	case Resume:
		return tResume
	case JobRequest:
		return tJobRequest
	case JobReply:
		return tJobReply
	case JobSubmit:
		return tJobSubmit
	case JobSubmitReply:
		return tJobSubmitReply
	case JobDone:
		return tJobDone
	case JobList:
		return tJobList
	case JobListReply:
		return tJobListReply
	case Ack:
		return tAck
	case PeerGone:
		return tPeerGone
	case StatReport:
		return tStatReport
	case DrainRequest:
		return tDrainRequest
	case DrainAck:
		return tDrainAck
	case SuspectSet:
		return tSuspectSet
	case DrainOrder:
		return tDrainOrder
	case nil:
		return tNilPayload
	default:
		return tGobEnvelope
	}
}

var tagNames = map[byte]string{
	tStealRequest: "StealRequest", tStealReply: "StealReply",
	tStealConfirm: "StealConfirm", tArg: "Arg", tMigrate: "Migrate",
	tMigrateAck: "MigrateAck", tRegister: "Register",
	tRegisterReply: "RegisterReply", tUnregister: "Unregister",
	tUpdate: "Update", tHeartbeat: "Heartbeat", tWorkerDown: "WorkerDown",
	tIO: "IO", tShutdown: "Shutdown", tSpawnRoot: "SpawnRoot",
	tStayRequest: "StayRequest", tStayReply: "StayReply", tPause: "Pause",
	tPauseAck: "PauseAck", tSnapshotRequest: "SnapshotRequest",
	tSnapshotReply: "SnapshotReply", tResume: "Resume",
	tJobRequest: "JobRequest", tJobReply: "JobReply", tJobSubmit: "JobSubmit",
	tJobSubmitReply: "JobSubmitReply", tJobDone: "JobDone", tJobList: "JobList",
	tJobListReply: "JobListReply", tAck: "Ack", tNilPayload: "nil",
	tPeerGone: "PeerGone", tStatReport: "StatReport",
	tDrainRequest: "DrainRequest", tDrainAck: "DrainAck",
	tSuspectSet: "SuspectSet", tDrainOrder: "DrainOrder",
	tGobEnvelope: "gob-fallback",
}

func tagName(t byte) string {
	if s, ok := tagNames[t]; ok {
		return s
	}
	return fmt.Sprintf("tag(%d)", t)
}

func appendPayload(b []byte, p any) ([]byte, error) {
	switch x := p.(type) {
	case StealRequest:
		return appendI32(b, int32(x.Thief)), nil
	case StealReply:
		return appendClosure(appendBool(b, x.OK), x.Task)
	case StealConfirm:
		return appendTaskID(b, x.Record), nil
	case Arg:
		b = appendCont(b, x.Cont)
		b, err := appendValue(b, x.Val)
		if err != nil {
			return nil, err
		}
		return appendTC(appendBool(b, x.Crossed), x.TC), nil
	case Migrate:
		b = appendI32(b, int32(x.From))
		b = appendLen(b, len(x.Closures), x.Closures == nil)
		var err error
		for _, c := range x.Closures {
			if b, err = appendClosure(b, c); err != nil {
				return nil, err
			}
		}
		b = appendLen(b, len(x.Records), x.Records == nil)
		for _, r := range x.Records {
			if b, err = appendRecord(b, r); err != nil {
				return nil, err
			}
		}
		return b, nil
	case MigrateAck:
		return appendI64(b, int64(x.Count)), nil
	case Register:
		b = appendI32(b, int32(x.Worker))
		b = appendStr(b, x.Addr)
		b = appendI32(b, x.Site)
		return appendI64(b, x.SendNS), nil
	case RegisterReply:
		b = appendI32(b, int32(x.Assigned))
		b = appendView(b, x.View)
		return appendI64(b, x.RecvNS), nil
	case Unregister:
		b = appendI32(b, int32(x.Worker))
		b = appendI32(b, int32(x.Reason))
		return appendI32(b, int32(x.MigratedTo)), nil
	case Update:
		return appendView(b, x.View), nil
	case Heartbeat:
		return appendI64(appendI32(b, int32(x.Worker)), x.SendNS), nil
	case WorkerDown:
		b = appendI32(b, int32(x.Worker))
		b = appendTaskCkpts(b, x.Ckpts)
		return appendTC(b, x.TC), nil
	case IO:
		return appendStr(appendI32(b, int32(x.Worker)), x.Text), nil
	case Shutdown:
		return appendStr(b, x.Reason), nil
	case SpawnRoot:
		return appendValues(appendStr(b, x.Fn), x.Args)
	case StayRequest:
		return appendI32(b, int32(x.Worker)), nil
	case StayReply:
		return appendBool(b, x.Stay), nil
	case Pause:
		return appendU64(b, x.Seq), nil
	case PauseAck:
		b = appendU64(b, x.Seq)
		b = appendI32(b, int32(x.Worker))
		b = appendCounts(b, x.SentTo)
		return appendCounts(b, x.RecvFr), nil
	case SnapshotRequest:
		return appendU64(b, x.Seq), nil
	case SnapshotReply:
		b = appendU64(b, x.Seq)
		b = appendI32(b, int32(x.Worker))
		b = appendLen(b, len(x.Closures), x.Closures == nil)
		var err error
		for _, c := range x.Closures {
			if b, err = appendClosure(b, c); err != nil {
				return nil, err
			}
		}
		b = appendLen(b, len(x.Records), x.Records == nil)
		for _, r := range x.Records {
			if b, err = appendRecord(b, r); err != nil {
				return nil, err
			}
		}
		return b, nil
	case Resume:
		return appendU64(b, x.Seq), nil
	case JobRequest:
		return appendI32(b, int32(x.Workstation)), nil
	case JobReply:
		return appendJobSpec(appendBool(b, x.OK), x.Job)
	case JobSubmit:
		return appendJobSpec(b, x.Job)
	case JobSubmitReply:
		return appendI64(b, int64(x.ID)), nil
	case JobDone:
		return appendI64(b, int64(x.ID)), nil
	case JobList:
		return b, nil
	case JobListReply:
		b = appendLen(b, len(x.Jobs), x.Jobs == nil)
		var err error
		for _, j := range x.Jobs {
			if b, err = appendJobSpec(b, j); err != nil {
				return nil, err
			}
		}
		return b, nil
	case Ack:
		return appendU64(b, x.Seq), nil
	case PeerGone:
		return appendI32(b, int32(x.Worker)), nil
	case StatReport:
		b = appendI32(b, x.Ver)
		b = appendI32(b, int32(x.Worker))
		b = appendI32(b, x.Deque)
		b = appendI64s(b, x.Counters)
		b = appendLen(b, len(x.Hists), x.Hists == nil)
		for _, h := range x.Hists {
			b = appendI32(b, h.Kind)
			b = appendI64(b, h.Count)
			b = appendI64(b, h.Sum)
			b = appendI64s(b, h.Counts)
		}
		b = appendTaskCkpts(b, x.Ckpts)
		b = appendU64(b, x.SpanSeq)
		b = appendI64(b, x.ClockOffNS)
		return appendSpans(b, x.Spans), nil
	case DrainRequest:
		return appendI32(b, int32(x.Worker)), nil
	case DrainAck:
		return appendStr(appendI32(appendBool(b, x.OK), int32(x.Victim)), x.Addr), nil
	case SuspectSet:
		b = appendLen(b, len(x.Suspects), x.Suspects == nil)
		for _, s := range x.Suspects {
			b = appendI32(b, int32(s.Worker))
			b = appendI32(b, s.PhiMilli)
			b = appendTaskCkpts(b, s.Ckpts)
		}
		return b, nil
	case DrainOrder:
		return appendStr(b, x.Reason), nil
	case nil:
		return b, nil
	default:
		// Unknown payload type: whole-payload gob fallback.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
			return nil, err
		}
		return append(b, buf.Bytes()...), nil
	}
}

// ---- Bounds-checked reader ------------------------------------------------

// reader consumes a frame body with a sticky error: after the first
// short/invalid read, every subsequent call is a no-op returning zero
// values, and the caller checks err once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errShortFrame
	}
}

func (r *reader) rem() int { return len(r.b) - r.off }

// take returns the next n bytes of the body without copying. Callers that
// retain data must copy it (str, blob and friends do).
func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || r.rem() < n {
		r.fail()
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint32(s)
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint64(s)
}

func (r *reader) i32() int32             { return int32(r.u32()) }
func (r *reader) i64() int64             { return int64(r.u64()) }
func (r *reader) f64() float64           { return math.Float64frombits(r.u64()) }
func (r *reader) worker() types.WorkerID { return types.WorkerID(r.i32()) }

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail()
		return false
	}
}

func (r *reader) str() string {
	n := r.u32()
	s := r.take(int(n))
	if s == nil {
		return ""
	}
	return string(s)
}

// internStr reads a string through the function-name intern table —
// used for fields drawn from a small closed set (closure Fn names).
func (r *reader) internStr() string {
	n := r.u32()
	s := r.take(int(n))
	if s == nil {
		return ""
	}
	return internName(s)
}

// count reads a presence flag plus element count for a slice/map whose
// elements occupy at least minElem bytes each; -1 means nil. Validating
// the count against the bytes remaining stops corrupt frames from forcing
// huge allocations.
func (r *reader) count(minElem int) int {
	switch r.u8() {
	case 0:
		return -1
	case 1:
		n := int(r.u32())
		if minElem > 0 && n > r.rem()/minElem {
			r.fail()
			return -1
		}
		return n
	default:
		r.fail()
		return -1
	}
}

func (r *reader) i64s() []int64 {
	n := r.count(8)
	if n < 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

func (r *reader) taskID() types.TaskID {
	return types.TaskID{Worker: r.worker(), Seq: r.u64()}
}

func (r *reader) cont() types.Continuation {
	return types.Continuation{Task: r.taskID(), Slot: r.i32()}
}

func (r *reader) value(depth int) types.Value {
	if depth > maxValueDepth {
		r.fail()
		return nil
	}
	switch tag := r.u8(); tag {
	case vNil:
		return nil
	case vInt64:
		return r.i64()
	case vInt:
		return int(r.i64())
	case vInt32:
		return r.i32()
	case vUint64:
		return r.u64()
	case vFloat64:
		return r.f64()
	case vString:
		return r.str()
	case vBool:
		return r.bool()
	case vBytes:
		n := r.count(1)
		if n < 0 {
			return []byte(nil)
		}
		s := r.take(n)
		if s == nil {
			return []byte(nil)
		}
		out := make([]byte, n)
		copy(out, s)
		return out
	case vInt64s:
		n := r.count(8)
		if n < 0 {
			return []int64(nil)
		}
		out := make([]int64, n)
		for i := range out {
			out[i] = r.i64()
		}
		return out
	case vFloat64s:
		n := r.count(8)
		if n < 0 {
			return []float64(nil)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = r.f64()
		}
		return out
	case vValues:
		return r.values(depth + 1)
	case vGob:
		n := int(r.u32())
		s := r.take(n)
		if s == nil {
			return nil
		}
		var v types.Value
		if err := gob.NewDecoder(bytes.NewReader(s)).Decode(&v); err != nil {
			if r.err == nil {
				r.err = err
			}
			return nil
		}
		return v
	default:
		r.fail()
		return nil
	}
}

func (r *reader) values(depth int) []types.Value {
	n := r.count(1)
	if n < 0 {
		return nil
	}
	out := make([]types.Value, n)
	for i := range out {
		out[i] = r.value(depth)
	}
	return out
}

func (r *reader) closure() Closure {
	return Closure{
		ID:      r.taskID(),
		Fn:      r.internStr(),
		Args:    r.values(0),
		Missing: r.i32(),
		Cont:    r.cont(),
		NoSteal: r.bool(),
		Ckpt:    r.blob(),
		CkptSeq: r.u64(),
		TC:      r.tc(),
	}
}

func (r *reader) tc() TraceCtx {
	return TraceCtx{Parent: r.taskID(), Flags: r.u8()}
}

func (r *reader) spans() []Span {
	n := r.count(spanWireLen)
	if n < 0 {
		return nil
	}
	out := make([]Span, n)
	for i := range out {
		out[i] = Span{
			Kind:   r.u8(),
			Flags:  r.u8(),
			Worker: r.worker(),
			Task:   r.taskID(),
			Parent: r.taskID(),
			Link:   r.taskID(),
			Peer:   r.worker(),
			Start:  r.i64(),
			End:    r.i64(),
		}
	}
	return out
}

// blob reads a presence-flagged byte slice written by appendBlob, copying
// out of the frame buffer so the result survives envelope reuse.
func (r *reader) blob() []byte {
	n := r.count(1)
	if n < 0 {
		return nil
	}
	s := r.take(n)
	if s == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, s)
	return out
}

func (r *reader) taskCkpts() []TaskCkpt {
	// A checkpoint entry is at least taskID + seq + blob flag = 21 bytes.
	n := r.count(21)
	if n < 0 {
		return nil
	}
	out := make([]TaskCkpt, n)
	for i := range out {
		out[i] = TaskCkpt{Task: r.taskID(), Seq: r.u64(), Data: r.blob()}
	}
	return out
}

func (r *reader) closures() []Closure {
	n := r.count(1)
	if n < 0 {
		return nil
	}
	out := make([]Closure, n)
	for i := range out {
		out[i] = r.closure()
	}
	return out
}

func (r *reader) record() Record {
	return Record{
		ID:            r.taskID(),
		RealCont:      r.cont(),
		Task:          r.closure(),
		Thief:         r.worker(),
		Confirmed:     r.bool(),
		OutstandingNS: r.i64(),
	}
}

func (r *reader) records() []Record {
	n := r.count(1)
	if n < 0 {
		return nil
	}
	out := make([]Record, n)
	for i := range out {
		out[i] = r.record()
	}
	return out
}

func (r *reader) view() MembershipView {
	v := MembershipView{Epoch: r.u64()}
	n := r.count(13) // worker + addr len + hostedBy + site minimum
	if n < 0 {
		return v
	}
	v.Members = make([]MemberInfo, n)
	for i := range v.Members {
		v.Members[i] = MemberInfo{
			Worker:   r.worker(),
			Addr:     r.str(),
			HostedBy: r.worker(),
			Site:     r.i32(),
		}
	}
	return v
}

func (r *reader) jobSpec() JobSpec {
	return JobSpec{
		ID:       types.JobID(r.i64()),
		Name:     r.str(),
		Program:  r.str(),
		RootFn:   r.str(),
		RootArgs: r.values(0),
		CHAddr:   r.str(),
		Priority: r.i32(),
	}
}

func (r *reader) counts() map[types.WorkerID]int64 {
	n := r.count(12)
	if n < 0 {
		return nil
	}
	out := make(map[types.WorkerID]int64, n)
	for i := 0; i < n; i++ {
		k := r.worker()
		out[k] = r.i64()
	}
	return out
}

func readPayload(r *reader, tag byte) any {
	switch tag {
	case tStealRequest:
		return StealRequest{Thief: r.worker()}
	case tStealReply:
		return StealReply{OK: r.bool(), Task: r.closure()}
	case tStealConfirm:
		return StealConfirm{Record: r.taskID()}
	case tArg:
		return Arg{Cont: r.cont(), Val: r.value(0), Crossed: r.bool(), TC: r.tc()}
	case tMigrate:
		return Migrate{From: r.worker(), Closures: r.closures(), Records: r.records()}
	case tMigrateAck:
		return MigrateAck{Count: int(r.i64())}
	case tRegister:
		return Register{Worker: r.worker(), Addr: r.str(), Site: r.i32(), SendNS: r.i64()}
	case tRegisterReply:
		return RegisterReply{Assigned: r.worker(), View: r.view(), RecvNS: r.i64()}
	case tUnregister:
		return Unregister{Worker: r.worker(), Reason: LeaveReason(r.i32()), MigratedTo: r.worker()}
	case tUpdate:
		return Update{View: r.view()}
	case tHeartbeat:
		return Heartbeat{Worker: r.worker(), SendNS: r.i64()}
	case tWorkerDown:
		return WorkerDown{Worker: r.worker(), Ckpts: r.taskCkpts(), TC: r.tc()}
	case tIO:
		return IO{Worker: r.worker(), Text: r.str()}
	case tShutdown:
		return Shutdown{Reason: r.str()}
	case tSpawnRoot:
		return SpawnRoot{Fn: r.str(), Args: r.values(0)}
	case tStayRequest:
		return StayRequest{Worker: r.worker()}
	case tStayReply:
		return StayReply{Stay: r.bool()}
	case tPause:
		return Pause{Seq: r.u64()}
	case tPauseAck:
		return PauseAck{Seq: r.u64(), Worker: r.worker(), SentTo: r.counts(), RecvFr: r.counts()}
	case tSnapshotRequest:
		return SnapshotRequest{Seq: r.u64()}
	case tSnapshotReply:
		return SnapshotReply{Seq: r.u64(), Worker: r.worker(), Closures: r.closures(), Records: r.records()}
	case tResume:
		return Resume{Seq: r.u64()}
	case tJobRequest:
		return JobRequest{Workstation: types.WorkstationID(r.i32())}
	case tJobReply:
		return JobReply{OK: r.bool(), Job: r.jobSpec()}
	case tJobSubmit:
		return JobSubmit{Job: r.jobSpec()}
	case tJobSubmitReply:
		return JobSubmitReply{ID: types.JobID(r.i64())}
	case tJobDone:
		return JobDone{ID: types.JobID(r.i64())}
	case tJobList:
		return JobList{}
	case tJobListReply:
		n := r.count(1)
		if n < 0 {
			return JobListReply{}
		}
		jobs := make([]JobSpec, n)
		for i := range jobs {
			jobs[i] = r.jobSpec()
		}
		return JobListReply{Jobs: jobs}
	case tAck:
		return Ack{Seq: r.u64()}
	case tPeerGone:
		return PeerGone{Worker: r.worker()}
	case tStatReport:
		p := StatReport{Ver: r.i32(), Worker: r.worker(), Deque: r.i32()}
		p.Counters = r.i64s()
		// A histogram state is at least kind+count+sum+len = 25 bytes.
		n := r.count(25)
		if n >= 0 {
			p.Hists = make([]HistState, n)
			for i := range p.Hists {
				p.Hists[i] = HistState{Kind: r.i32(), Count: r.i64(), Sum: r.i64(), Counts: r.i64s()}
			}
		}
		p.Ckpts = r.taskCkpts()
		p.SpanSeq = r.u64()
		p.ClockOffNS = r.i64()
		p.Spans = r.spans()
		return p
	case tDrainRequest:
		return DrainRequest{Worker: r.worker()}
	case tDrainAck:
		return DrainAck{OK: r.bool(), Victim: r.worker(), Addr: r.str()}
	case tSuspectSet:
		// A suspect entry is at least worker + phi + ckpt flag = 9 bytes.
		n := r.count(9)
		if n < 0 {
			return SuspectSet{}
		}
		ss := SuspectSet{Suspects: make([]SuspectInfo, n)}
		for i := range ss.Suspects {
			ss.Suspects[i] = SuspectInfo{Worker: r.worker(), PhiMilli: r.i32(), Ckpts: r.taskCkpts()}
		}
		return ss
	case tDrainOrder:
		return DrainOrder{Reason: r.str()}
	case tNilPayload:
		return nil
	case tGobEnvelope:
		s := r.take(r.rem())
		var p any
		if err := gob.NewDecoder(bytes.NewReader(s)).Decode(&p); err != nil {
			if r.err == nil {
				r.err = err
			}
			return nil
		}
		return p
	default:
		r.fail()
		return nil
	}
}
