// Package clearinghouse implements the per-job Clearinghouse of the paper
// (Section 3, Figure 3): an application-independent process that keeps
// track of the workers participating in one parallel job, pushes periodic
// membership updates, funnels application I/O so "a user need only watch
// the Clearinghouse to see job output", arbitrates worker retirement when
// parallelism shrinks, and holds the redundant state needed to restart a
// job whose root lineage is lost to a crash.
package clearinghouse

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"phish/internal/clock"
	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/telemetry"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wire"
)

// Config tunes a clearinghouse.
type Config struct {
	// UpdateEvery is the interval between unsolicited membership pushes
	// (the paper's workers obtain an update "once every 2 minutes";
	// membership changes are pushed immediately regardless).
	UpdateEvery time.Duration
	// HeartbeatTimeout declares a worker crashed when nothing is heard
	// from it for this long. Zero disables heartbeat-based detection
	// (explicit crash notifications still work). A worker that has never
	// sent a single heartbeat is exempt — a participant configured with
	// heartbeats off must not be declared dead by a clearinghouse with
	// them on.
	HeartbeatTimeout time.Duration
	// Journal, when non-nil, receives every control-plane state change so
	// a restarted clearinghouse can resume the job (see journal.go).
	Journal *Journal
	// Clock drives the periodic behavior; nil means the system clock.
	Clock clock.Clock
	// Trace, when non-nil and enabled, records control-plane events
	// (journal replay on recovery).
	Trace *trace.Buffer
	// Metrics, when non-nil, records the journal append+fsync latency
	// histogram and is folded into the cluster rollup.
	Metrics *telemetry.Metrics
}

// DefaultConfig mirrors the paper's coarse communication granularity,
// scaled from minutes to seconds so laptop runs exercise the same paths.
// Heartbeat crash detection is on by default at 3× the update interval
// (the paper's workers check in every update period; three missed periods
// means the machine, not the network, is gone).
func DefaultConfig() Config {
	return Config{
		UpdateEvery:      2 * time.Second,
		HeartbeatTimeout: 6 * time.Second,
		Clock:            clock.System,
	}
}

// member is the clearinghouse's record of a (possibly departed)
// participant.
type member struct {
	info      wire.MemberInfo
	lastHeard time.Time
	departed  bool
	hbSeen    bool // has ever heartbeated; gates timeout-based crash calls
}

// Clearinghouse tracks one job. Create with New, then Run (usually in a
// goroutine); WaitResult blocks until the job's root result arrives.
type Clearinghouse struct {
	job  types.JobID
	spec wire.JobSpec
	conn phishnet.Conn
	cfg  Config
	clk  clock.Clock

	mu       sync.Mutex
	members  map[types.WorkerID]*member
	epoch    uint64
	rootHost types.WorkerID
	armRoot  bool // spawn the root at the next registration
	done     bool
	result   types.Value
	output   strings.Builder
	ioLines  int64
	msgsSent int64
	msgsRecv int64
	synchs   int64

	// Checkpoint coordination (see checkpoint.go).
	ckpt        *ckptState
	ckptSeq     uint64
	restore     []wire.SnapshotReply
	restoreRoot types.WorkerID

	// Crash-recovery journal (see journal.go); nil when not journaling.
	journal *Journal

	// Telemetry: the clearinghouse's own fault counters (journal records)
	// and the latest piggybacked StatReport from each worker, cumulative
	// and idempotent — a duplicate or reordered report just rewrites the
	// same worker's row.
	counters stats.Counters
	reports  map[types.WorkerID]recvReport

	doneCh chan struct{}
	stopCh chan struct{}
	ranCh  chan struct{} // closed when Run exits
}

// New builds a clearinghouse for spec, speaking on conn (which must be
// attached as types.ClearinghouseID).
func New(spec wire.JobSpec, conn phishnet.Conn, cfg Config) *Clearinghouse {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	c := &Clearinghouse{
		job:      spec.ID,
		spec:     spec,
		conn:     conn,
		cfg:      cfg,
		clk:      clk,
		members:  make(map[types.WorkerID]*member),
		rootHost: types.NoWorker,
		armRoot:  true,
		journal:  cfg.Journal,
		reports:  make(map[types.WorkerID]recvReport),
		doneCh:   make(chan struct{}),
		stopCh:   make(chan struct{}),
		ranCh:    make(chan struct{}),
	}
	if c.journal != nil {
		c.journal.instrument(&c.counters, cfg.Metrics.WALAppend())
		c.journal.append(&journalRecord{Kind: jSpec, Spec: spec}, true)
	}
	return c
}

// recvReport is the latest StatReport from one worker plus its arrival
// time (for staleness display in phishtop).
type recvReport struct {
	rep wire.StatReport
	at  time.Time
}

// Run services the job until Stop is called or the job completes and all
// workers have unregistered.
func (c *Clearinghouse) Run() {
	defer close(c.ranCh)
	var tick <-chan time.Time
	if c.cfg.UpdateEvery > 0 {
		tick = c.clk.After(c.cfg.UpdateEvery)
	}
	var hbTick <-chan time.Time
	if c.cfg.HeartbeatTimeout > 0 {
		hbTick = c.clk.After(c.cfg.HeartbeatTimeout / 2)
	}
	for {
		select {
		case <-c.stopCh:
			return
		case env, ok := <-c.conn.Recv():
			if !ok {
				return
			}
			c.handle(env)
		case <-tick:
			c.broadcastUpdate()
			tick = c.clk.After(c.cfg.UpdateEvery)
		case <-hbTick:
			c.checkHeartbeats()
			hbTick = c.clk.After(c.cfg.HeartbeatTimeout / 2)
		}
	}
}

// Stop shuts the clearinghouse down.
func (c *Clearinghouse) Stop() {
	select {
	case <-c.stopCh:
	default:
		close(c.stopCh)
	}
	<-c.ranCh
}

// WaitResult blocks until the root result arrives or the timeout elapses.
func (c *Clearinghouse) WaitResult(timeout time.Duration) (types.Value, error) {
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tc = t.C
	}
	select {
	case <-c.doneCh:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.result, nil
	case <-tc:
		return nil, fmt.Errorf("clearinghouse: job %d: no result after %v", c.job, timeout)
	}
}

// Done reports whether the root result has arrived.
func (c *Clearinghouse) Done() bool {
	select {
	case <-c.doneCh:
		return true
	default:
		return false
	}
}

// Output returns everything workers printed through the clearinghouse.
func (c *Clearinghouse) Output() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.output.String()
}

// LiveWorkers returns the ids of currently participating workers.
func (c *Clearinghouse) LiveWorkers() []types.WorkerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]types.WorkerID, 0, len(c.members))
	for id, m := range c.members {
		if !m.departed {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Messages returns (sent, received) message counts for Table 2 totals.
func (c *Clearinghouse) Messages() (sent, recv int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.msgsSent, c.msgsRecv
}

func (c *Clearinghouse) handle(env *wire.Envelope) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := env.Payload.(wire.PeerGone); ok {
		// Transport-synthesized, local-only: retransmits to that worker
		// were exhausted, so declare the crash now instead of waiting out
		// the heartbeat timeout.
		c.crashLocked(p.Worker)
		return
	}
	c.msgsRecv++
	// Any traffic from a live member proves it is alive; heartbeats are
	// just the guaranteed minimum cadence.
	if m, ok := c.members[env.From]; ok && !m.departed {
		m.lastHeard = c.clk.Now()
	}
	switch p := env.Payload.(type) {
	case wire.Register:
		c.onRegister(p)
	case wire.Unregister:
		c.onUnregister(p)
	case wire.Heartbeat:
		if m, ok := c.members[p.Worker]; ok {
			m.lastHeard = c.clk.Now()
			m.hbSeen = true
		}
	case wire.StatReport:
		// Latest-wins per worker: reports carry cumulative values, so
		// duplicates and reordering (within one incarnation) are harmless.
		c.reports[p.Worker] = recvReport{rep: p, at: c.clk.Now()}
	case wire.Arg:
		c.onArg(p)
	case wire.IO:
		c.ioLines++
		c.output.WriteString(p.Text)
		if !strings.HasSuffix(p.Text, "\n") {
			c.output.WriteByte('\n')
		}
		if c.journal != nil {
			text := p.Text
			if !strings.HasSuffix(text, "\n") {
				text += "\n"
			}
			c.journal.append(&journalRecord{Kind: jIO, Text: text}, false)
		}
	case wire.StayRequest:
		c.onStayRequest(p)
	case wire.PauseAck:
		if c.ckpt != nil && p.Seq == c.ckpt.seq && c.ckpt.workers[p.Worker] {
			c.ckpt.acks[p.Worker] = p
		}
	case wire.SnapshotReply:
		if c.ckpt != nil && p.Seq == c.ckpt.seq && c.ckpt.workers[p.Worker] {
			c.ckpt.snaps[p.Worker] = p
		}
	default:
		// Workers talk to each other directly; anything else is stray.
	}
}

func (c *Clearinghouse) onRegister(p wire.Register) {
	if c.ckpt != nil {
		if _, already := c.members[p.Worker]; !already {
			c.ckpt.aborted = true // a joiner mid-checkpoint invalidates the matrix
		}
	}
	m, exists := c.members[p.Worker]
	switch {
	case !exists:
		c.members[p.Worker] = &member{
			info:      wire.MemberInfo{Worker: p.Worker, Addr: p.Addr, HostedBy: p.Worker, Site: p.Site},
			lastHeard: c.clk.Now(),
		}
		c.epoch++
	case m.departed:
		// Worker ids are incarnation-unique (the JobManager mints a fresh
		// one per start), so a departed id re-registering is a protocol
		// violation; keep the tombstone and just answer.
	default:
		m.lastHeard = c.clk.Now() // duplicate Register retry
	}
	c.conn.SetPeer(p.Worker, p.Addr)
	c.send(p.Worker, wire.RegisterReply{Assigned: p.Worker, View: c.viewLocked()})
	if c.done {
		// The job finished while this worker was still joining (easy on a
		// fast job: the shutdown broadcast predates its membership). Tell
		// it directly or it will thieve forever.
		c.send(p.Worker, wire.Shutdown{Reason: "job complete"})
	}
	if c.armRoot && !c.done {
		c.armRoot = false
		c.rootHost = p.Worker
		c.send(p.Worker, wire.SpawnRoot{Fn: c.spec.RootFn, Args: c.spec.RootArgs})
	}
	// Restoring from a checkpoint: hand the new worker a departed
	// participant's bundle as an ordinary migration, and tombstone the
	// old id so everything routes to the adopter. Bundle ids must not
	// collide with live members (a registrant may reuse an old id, in
	// which case it adopts its own former state and needs no tombstone).
	if !c.done {
		if idx := c.pickBundleLocked(p.Worker); idx >= 0 {
			bundle := c.restore[idx]
			c.restore = append(c.restore[:idx], c.restore[idx+1:]...)
			if bundle.Worker != p.Worker {
				c.members[bundle.Worker] = &member{
					info:     wire.MemberInfo{Worker: bundle.Worker, HostedBy: p.Worker},
					departed: true,
				}
			}
			c.epoch++
			if bundle.Worker == c.restoreRoot {
				c.rootHost = p.Worker
			}
			c.send(p.Worker, wire.Migrate{
				From:     bundle.Worker,
				Closures: bundle.Closures,
				Records:  bundle.Records,
			})
		}
	}
	c.journalStateLocked()
	c.broadcastUpdateLocked(types.NoWorker)
}

func (c *Clearinghouse) onUnregister(p wire.Unregister) {
	m, ok := c.members[p.Worker]
	if !ok || m.departed {
		return
	}
	if c.ckpt != nil && c.ckpt.workers[p.Worker] {
		c.ckpt.aborted = true
	}
	switch {
	case p.Reason == wire.LeaveCrash:
		c.crashLocked(p.Worker)
		return
	case p.MigratedTo != types.NoWorker:
		// Tombstone: the adopter now hosts the departed worker's tasks.
		m.departed = true
		m.info.HostedBy = p.MigratedTo
		// Flatten chains: anything previously hosted by the leaver moves
		// to the adopter too.
		for _, other := range c.members {
			if other.info.HostedBy == p.Worker {
				other.info.HostedBy = p.MigratedTo
			}
		}
		if c.rootHost == p.Worker {
			c.rootHost = p.MigratedTo
		}
	default:
		// Clean exit with no state. Keep a tombstone (HostedBy=NoWorker)
		// rather than deleting: a worker that simply vanishes from the
		// view is indistinguishable from one not yet announced, and the
		// steal-record recovery sweep must be able to tell "departed"
		// from "not seen yet".
		m.departed = true
		m.info.HostedBy = types.NoWorker
		if c.rootHost == p.Worker && !c.done {
			// It left holding nothing while the job is unfinished; if the
			// root's lineage really is gone (e.g., the root spawn was
			// still in flight), the next registrant restarts it. A root
			// result already in flight wins harmlessly: duplicate
			// completions are deduplicated here.
			c.rootHost = types.NoWorker
			c.armRoot = true
		}
	}
	c.epoch++
	c.journalStateLocked()
	c.broadcastUpdateLocked(types.NoWorker)
}

// crashLocked handles the definitive loss of a worker and its state.
func (c *Clearinghouse) crashLocked(dead types.WorkerID) {
	m, ok := c.members[dead]
	if !ok || m.departed {
		return
	}
	delete(c.members, dead)
	// Anything hosted by the dead worker is gone with it.
	for id, other := range c.members {
		if other.info.HostedBy == dead {
			delete(c.members, id)
		}
	}
	c.epoch++
	c.conn.DropPeer(dead)
	for id, other := range c.members {
		if other.departed {
			continue
		}
		c.send(id, wire.WorkerDown{Worker: dead})
	}
	c.broadcastUpdateLocked(types.NoWorker)
	if c.rootHost == dead && !c.done {
		// The root lineage died. Respawn on any live worker, or arm the
		// respawn for the next registrant.
		c.rootHost = types.NoWorker
		for id, other := range c.members {
			if !other.departed {
				c.rootHost = id
				c.send(id, wire.SpawnRoot{Fn: c.spec.RootFn, Args: c.spec.RootArgs})
				break
			}
		}
		if c.rootHost == types.NoWorker {
			c.armRoot = true
		}
	}
	c.journalStateLocked()
}

func (c *Clearinghouse) onArg(p wire.Arg) {
	if p.Cont.Task.Worker != types.ClearinghouseID {
		return // misrouted
	}
	c.synchs++
	if c.done {
		return // duplicate root result after a redo; first one won
	}
	c.done = true
	c.result = p.Val
	if c.journal != nil {
		// The one record that must reach stable storage: the answer.
		c.journal.append(&journalRecord{Kind: jResult, Result: p.Val}, true)
	}
	close(c.doneCh)
	for id, m := range c.members {
		if !m.departed {
			c.send(id, wire.Shutdown{Reason: "job complete"})
		}
	}
}

func (c *Clearinghouse) onStayRequest(p wire.StayRequest) {
	live := 0
	for _, m := range c.members {
		if !m.departed {
			live++
		}
	}
	// Keep the last participant, and keep the root's host (its lineage
	// base may still be in flight to it).
	stay := !c.done && (live <= 1 || p.Worker == c.rootHost)
	c.send(p.Worker, wire.StayReply{Stay: stay})
}

// pickBundleLocked selects which restore bundle to hand the registrant:
// its own former id if present, else any bundle whose old id does not
// collide with a live member; -1 when none is safe to hand out yet.
func (c *Clearinghouse) pickBundleLocked(registrant types.WorkerID) int {
	if len(c.restore) == 0 {
		return -1
	}
	fallback := -1
	for i, b := range c.restore {
		if b.Worker == registrant {
			return i
		}
		if fallback == -1 {
			if m, ok := c.members[b.Worker]; !ok || m.departed {
				fallback = i
			}
		}
	}
	return fallback
}

func (c *Clearinghouse) viewLocked() wire.MembershipView {
	v := wire.MembershipView{Epoch: c.epoch}
	ids := make([]types.WorkerID, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		v.Members = append(v.Members, c.members[id].info)
	}
	return v
}

// broadcastUpdate pushes the current view to every live member.
func (c *Clearinghouse) broadcastUpdate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broadcastUpdateLocked(types.NoWorker)
}

// broadcastUpdateLocked pushes the view to all live members except skip
// (a registrant that just got the same view in its RegisterReply).
func (c *Clearinghouse) broadcastUpdateLocked(skip types.WorkerID) {
	view := c.viewLocked()
	for id, m := range c.members {
		if m.departed || id == skip {
			continue
		}
		c.send(id, wire.Update{View: view})
	}
}

func (c *Clearinghouse) checkHeartbeats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := c.clk.Now().Add(-c.cfg.HeartbeatTimeout)
	var deadList []types.WorkerID
	for id, m := range c.members {
		// Only workers that have actually heartbeated are subject to the
		// timeout: silence from a worker that never sent one means "not
		// configured to heartbeat", not "dead".
		if !m.departed && m.hbSeen && m.lastHeard.Before(cutoff) {
			deadList = append(deadList, id)
		}
	}
	for _, id := range deadList {
		c.crashLocked(id)
	}
}

func (c *Clearinghouse) send(to types.WorkerID, payload any) {
	env := &wire.Envelope{Job: c.job, From: types.ClearinghouseID, To: to, Payload: payload}
	if err := c.conn.Send(env); err == nil {
		c.msgsSent++
	}
}

// Counters exposes the clearinghouse's own counters so a UDP transport
// can be instrumented with them (retransmits, peer-gone reports).
func (c *Clearinghouse) Counters() *stats.Counters { return &c.counters }

// Stats snapshots the clearinghouse's own counters (journal records).
func (c *Clearinghouse) Stats() stats.Snapshot {
	s := c.counters.Snapshot()
	s.Worker = int(types.ClearinghouseID)
	return s
}

// ClusterSnapshot assembles the whole-job telemetry rollup from the latest
// piggybacked worker reports: per-worker rows, Table 2-style totals (plus
// the clearinghouse's own journal counter), and merged latency histograms
// including the clearinghouse's WAL-append histogram.
func (c *Clearinghouse) ClusterSnapshot() telemetry.ClusterSnapshot {
	c.mu.Lock()
	now := c.clk.Now()
	live := 0
	liveSet := make(map[types.WorkerID]bool, len(c.members))
	for id, m := range c.members {
		if !m.departed {
			live++
			liveSet[id] = true
		}
	}
	rows := make([]telemetry.WorkerRow, 0, len(c.reports))
	hists := make([][]wire.HistState, 0, len(c.reports)+1)
	for id, r := range c.reports {
		rows = append(rows, telemetry.WorkerRow{
			Worker: int(id),
			Live:   liveSet[id],
			Deque:  r.rep.Deque,
			AgeMS:  now.Sub(r.at).Milliseconds(),
			Stats:  stats.FromOrdered(r.rep.Counters),
		})
		hists = append(hists, r.rep.Hists)
	}
	job, program, epoch := int64(c.job), c.spec.Program, c.epoch
	chStats := c.counters.Snapshot()
	metrics := c.cfg.Metrics
	c.mu.Unlock()

	// The clearinghouse's own histograms (WAL append) join the merge.
	if states := metrics.Export(); len(states) > 0 {
		hists = append(hists, states)
	}
	cs := telemetry.BuildClusterSnapshot(job, program, epoch, live, rows, hists)
	cs.Totals.JournalRecords += chStats.JournalRecords
	return cs
}

// WriteMetrics renders the cluster rollup as Prometheus text exposition —
// what a clearinghouse's /metrics endpoint serves.
func (c *Clearinghouse) WriteMetrics(w io.Writer) error {
	return telemetry.WriteClusterProm(w, c.ClusterSnapshot())
}

// DebugMembers renders the membership table for post-mortem inspection.
func (c *Clearinghouse) DebugMembers() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := fmt.Sprintf("clearinghouse: done=%v rootHost=%d epoch=%d armRoot=%v\n",
		c.done, c.rootHost, c.epoch, c.armRoot)
	ids := make([]types.WorkerID, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := c.members[id]
		out += fmt.Sprintf("  member %d hostedBy=%d site=%d departed=%v\n",
			id, m.info.HostedBy, m.info.Site, m.departed)
	}
	return out
}
